package ctrl

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/objstore"
	"repro/internal/wire"
)

// ControllerConfig configures a Controller.
type ControllerConfig struct {
	// JobID is the composite job.
	JobID string
	// Store is the controller's own object-store connection, used for
	// the composite-manifest commit and composite-level GC.
	Store objstore.Store
	// Agents lists shard-agent addresses in any order; discovery maps
	// them to shard indices via Status.
	Agents []string
	// Epoch is this controller's job epoch. It must exceed any previous
	// controller's; zero auto-adopts max(agent epochs) + 1. Ignored when
	// Lease is set.
	Epoch uint64
	// Lease, when set, is a live grant from the job's epoch/lease
	// register. The controller commits under the lease's epoch and renews
	// the lease at the start of each checkpoint and again immediately
	// before the composite commit, refusing to commit once superseded.
	// When nil the controller runs in legacy flag-or-max+1 epoch mode.
	Lease *Lease
	// KeepLast bounds retained composite checkpoints (composite manifest
	// + dense objects; shard-level retention is each agent engine's
	// KeepLast). Zero keeps everything.
	KeepLast int
	// DialTimeout bounds agent connection establishment; zero means 5s.
	DialTimeout time.Duration
	// OpTimeout bounds the controller's own store and discovery
	// operations — agent Status during discovery and the ListManifests
	// that seeds GC — mirroring the per-op budget agents already have
	// (AgentConfig.OpTimeout). Zero means 30s. A hung store therefore
	// fails controller startup at this budget instead of a hardcoded
	// deadline.
	OpTimeout time.Duration
	// Announcer, when set, receives every committed composite via
	// Announce immediately after the commit point, fanning it out to
	// subscribed serving replicas. The announcer is owned by the
	// deployment (it survives controller failover); the controller only
	// seeds it with its epoch and announces into it.
	Announcer *Announcer
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)

	// AfterPrepare, when set, runs between the prepare and publish
	// phases. It is a fault-injection hook (like objstore's
	// Server.CloseConns): tests kill an agent in this window to prove a
	// mid-commit crash can never leave a restorable composite.
	AfterPrepare func()
	// AfterCommit, when set, runs after the composite manifest lands but
	// before agents finalize — the window where a crash must NOT
	// invalidate the checkpoint. Fault-injection hook like AfterPrepare.
	AfterCommit func()
}

// Controller owns the composite commit point for a distributed
// checkpoint fleet: it discovers shard agents, drives the two-phase
// commit over the control protocol (through the same ckpt.ShardRunner
// orchestration the in-process Coordinator uses), and alone stores the
// composite manifest. A crashed or partitioned agent therefore results
// in Abort — never a restorable-looking composite.
//
// Methods are not safe for concurrent use; checkpoints never overlap.
type Controller struct {
	cfg     ControllerConfig
	logf    func(format string, args ...any)
	epoch   uint64
	shards  int
	remotes []*RemoteRunner
	runners []ckpt.ShardRunner
	nextID  int
	// manifests caches committed composite manifests by ID for GC.
	manifests map[int]*wire.Manifest
}

// NewController dials and discovers the agent fleet. It validates that
// the agents cover shards [0, n) exactly once, agree on the job, and
// agree on the next checkpoint ID (an agent that lost or diverged its
// engine state fails discovery loudly rather than corrupting a chain).
func NewController(cfg ControllerConfig) (*Controller, error) {
	if cfg.JobID == "" {
		return nil, fmt.Errorf("ctrl: empty job ID")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("ctrl: nil store")
	}
	if len(cfg.Agents) == 0 {
		return nil, fmt.Errorf("ctrl: no agents")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Controller{cfg: cfg, logf: logf, manifests: make(map[int]*wire.Manifest)}

	type discovered struct {
		client *Client
		status *StatusReply
	}
	var found []discovered
	fail := func(err error) (*Controller, error) {
		for _, d := range found {
			d.client.Close()
		}
		return nil, err
	}
	opTimeout := cfg.OpTimeout
	if opTimeout <= 0 {
		opTimeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	var maxEpoch uint64
	for _, addr := range cfg.Agents {
		client, err := DialAgent(addr, ClientConfig{DialTimeout: cfg.DialTimeout})
		if err != nil {
			return fail(err)
		}
		st, err := client.Status(ctx)
		if err != nil {
			client.Close()
			return fail(fmt.Errorf("ctrl: status %s: %w", addr, err))
		}
		found = append(found, discovered{client, st})
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
	}
	sort.Slice(found, func(a, b int) bool { return found[a].status.Shard < found[b].status.Shard })
	n := len(found)
	c.shards = n
	c.epoch = cfg.Epoch
	if cfg.Lease != nil {
		// The register granted this epoch durably and monotonically; it
		// must still beat the fleet's view (an agent may have adopted a
		// higher epoch the register missed — fail loudly, don't commit).
		c.epoch = cfg.Lease.Epoch()
	}
	if c.epoch == 0 {
		c.epoch = maxEpoch + 1
	} else if c.epoch <= maxEpoch {
		// Strictly greater, not equal: an epoch the fleet has already
		// seen may belong to a live controller, and two same-epoch
		// controllers could interleave the two-phase commit (neither
		// fences the other). A restarted controller should use 0 and
		// let discovery bump past its predecessor.
		return fail(fmt.Errorf("ctrl: configured epoch %d not above fleet epoch %d", c.epoch, maxEpoch))
	}
	for i, d := range found {
		st := d.status
		if st.JobID != cfg.JobID {
			return fail(fmt.Errorf("ctrl: agent %s hosts job %q, want %q", d.client.Addr(), st.JobID, cfg.JobID))
		}
		if st.Shards != n {
			return fail(fmt.Errorf("ctrl: agent %s configured for %d shards, fleet has %d", d.client.Addr(), st.Shards, n))
		}
		if st.Shard != i {
			return fail(fmt.Errorf("ctrl: shard indices not [0,%d): got shard %d from %s", n, st.Shard, d.client.Addr()))
		}
		if st.NextID != found[0].status.NextID {
			return fail(fmt.Errorf("ctrl: agents disagree on next checkpoint: shard %d at %d, shard 0 at %d",
				st.Shard, st.NextID, found[0].status.NextID))
		}
		r := NewRemoteRunner(d.client, cfg.JobID, st.Shard, c.epoch, st.Shard == 0)
		c.remotes = append(c.remotes, r)
		c.runners = append(c.runners, r)
	}
	c.nextID = found[0].status.NextID
	if cfg.KeepLast > 0 {
		// Seed the GC set from the store so retention covers composites a
		// predecessor controller committed — a restarted or failed-over
		// controller would otherwise never sweep them and KeepLast would
		// silently leak manifests and dense objects forever.
		rest, err := ckpt.NewRestorer(cfg.JobID, cfg.Store)
		if err != nil {
			return fail(err)
		}
		existing, err := rest.ListManifests(ctx)
		if err != nil {
			return fail(fmt.Errorf("ctrl: list composites: %w", err))
		}
		for _, m := range existing {
			c.manifests[m.ID] = m
		}
	}
	if cfg.Announcer != nil {
		// Seed the announce endpoint so replicas subscribing between
		// checkpoints learn the current epoch and how far the chain has
		// advanced.
		cfg.Announcer.SetPosition(c.epoch, c.nextID)
	}
	logf("ctrl controller: job %s epoch %d, %d shards, next checkpoint %d",
		cfg.JobID, c.epoch, n, c.nextID)
	return c, nil
}

// Shards returns the discovered shard count.
func (c *Controller) Shards() int { return c.shards }

// Epoch returns the controller's job epoch.
func (c *Controller) Epoch() uint64 { return c.epoch }

// NextID returns the ID the next composite checkpoint will get.
func (c *Controller) NextID() int { return c.nextID }

// LatestID returns the newest committed composite's ID, or -1.
func (c *Controller) LatestID() int { return c.nextID - 1 }

// Checkpoint drives one composite checkpoint at the given global step:
// every agent advances its replica to the step, snapshots, and uploads
// (prepare); publishes its shard manifest; then the controller commits
// the composite manifest and the agents finalize. Any failure before
// the composite put — a slow shard, a crashed agent, a cancelled
// context — aborts every shard; a dead agent's debris is unreferenced
// and left to gc. On cancellation ctx.Err() is surfaced.
func (c *Controller) Checkpoint(ctx context.Context, step uint64) (*wire.Manifest, error) {
	id := c.nextID
	if c.cfg.Lease != nil {
		if err := c.cfg.Lease.Renew(ctx); err != nil {
			return nil, fmt.Errorf("ctrl: checkpoint %d: %w", id, err)
		}
	}
	fail := func(err error) (*wire.Manifest, error) {
		// Classify before aborting: "store down" means the abort below is
		// best-effort and a retry after healing is expected to succeed,
		// while any other failure is worth an operator's attention.
		if errors.Is(err, objstore.ErrStoreUnavailable) {
			c.logf("ctrl controller: checkpoint %d aborted, store unavailable (retryable): %v", id, err)
		}
		ckpt.AbortShards(ctx, c.runners, id)
		// The dense-designated agent may be the one that died after its
		// prepare: best-effort delete directly, too.
		dctx, cancel := ckpt.DetachedCtx(ctx)
		_ = c.cfg.Store.Delete(dctx, wire.DenseKey(c.cfg.JobID, id))
		cancel()
		if ce := ctx.Err(); ce != nil {
			return nil, ce
		}
		return nil, err
	}

	// Phase 1: prepare. Agents snapshot their own hosted state.
	shardMans, err := ckpt.PrepareShards(ctx, c.runners, id, step, nil)
	if err != nil {
		return fail(err)
	}
	// Consistent-cut fencing: every shard must have cut at the same
	// step. (Agents advance to the requested step; one that cannot —
	// e.g. a replica already past it — errors in prepare, but a
	// misconfigured source could silently cut elsewhere.)
	for s, sm := range shardMans {
		if sm.Step != step {
			return fail(fmt.Errorf("ctrl: inconsistent cut: shard %d at step %d, want %d", s, sm.Step, step))
		}
	}
	if c.cfg.AfterPrepare != nil {
		c.cfg.AfterPrepare()
	}

	// Phase 2: publish shard manifests. Still invisible to recovery.
	if err := ckpt.PublishShards(ctx, c.runners, id); err != nil {
		return fail(err)
	}

	// Phase 3: commit. The composite manifest's presence is the commit
	// point; the controller alone writes it.
	denseKey, denseBytes := c.remotes[0].Dense()
	assign := make(map[int]int)
	for s, sm := range shardMans {
		for _, tm := range sm.Tables {
			assign[tm.TableID] = s
		}
	}
	reader := data.ReaderState{
		NextSample: shardMans[0].ReaderNextSample,
		BatchSize:  shardMans[0].ReaderBatchSize,
	}
	man := ckpt.BuildComposite(c.cfg.JobID, id, step, reader, shardMans, assign, denseKey, denseBytes)
	manBlob, err := wire.EncodeManifest(man)
	if err != nil {
		return fail(fmt.Errorf("ctrl: encode composite manifest: %w", err))
	}
	if c.cfg.Lease != nil {
		// Last fencing check before the commit point: a controller whose
		// lease a standby has taken over must abort, not commit.
		if err := c.cfg.Lease.Renew(ctx); err != nil {
			return fail(fmt.Errorf("ctrl: lease lost before commit: %w", err))
		}
	}
	if err := c.cfg.Store.Put(ctx, wire.ManifestKey(c.cfg.JobID, id), manBlob); err != nil {
		return fail(fmt.Errorf("ctrl: store composite manifest: %w", err))
	}
	if c.cfg.AfterCommit != nil {
		c.cfg.AfterCommit()
	}
	if c.cfg.Announcer != nil {
		// The composite manifest is durable: tell the read plane before
		// finalize, so replicas start pulling the delta as early as
		// possible. The announcement carries this controller's epoch;
		// replicas fence on it.
		c.cfg.Announcer.Announce(c.epoch, man)
	}

	// Post-commit: the checkpoint is valid regardless of what happens
	// next. A finalize RPC lost to a crashed agent leaves that agent's
	// engine behind — surfaced as a fencing error on the next round,
	// not silent corruption — so log rather than roll back.
	fctx, cancelFinalize := ckpt.DetachedCtx(ctx)
	if err := ckpt.FinalizeShards(fctx, c.runners, id); err != nil {
		c.logf("ctrl controller: finalize after commit of %d: %v", id, err)
	}
	cancelFinalize()
	c.nextID++
	// Cache for retention only: with retention disabled the cache would
	// grow one manifest per checkpoint, forever, on a long-running job.
	if c.cfg.KeepLast > 0 {
		c.manifests[id] = man
		c.gc(ctx)
	}
	return man, nil
}

// Health polls every agent's Status — per-shard epoch, next checkpoint
// ID, and in-flight attempt — for operators, standby controllers, and
// tests. Read-only: agents apply no fencing to Status, so monitoring
// never perturbs commit state.
func (c *Controller) Health(ctx context.Context) ([]*StatusReply, error) {
	out := make([]*StatusReply, 0, len(c.remotes))
	for _, r := range c.remotes {
		st, err := r.Client().Status(ctx)
		if err != nil {
			return nil, fmt.Errorf("ctrl: status %s: %w", r.Client().Addr(), err)
		}
		out = append(out, st)
	}
	return out, nil
}

// gc deletes composite-level objects (manifest + dense) of checkpoints
// beyond KeepLast, mirroring Coordinator.gc: shard-level objects are
// garbage collected by each agent's engine, which retains whatever its
// retained increments depend on.
func (c *Controller) gc(ctx context.Context) {
	cctx, cancel := ckpt.DetachedCtx(ctx)
	defer cancel()
	for id, m := range c.manifests {
		if id > c.nextID-1-c.cfg.KeepLast {
			continue
		}
		_ = c.cfg.Store.Delete(cctx, wire.ManifestKey(c.cfg.JobID, id))
		if m.DenseKey != "" {
			_ = c.cfg.Store.Delete(cctx, m.DenseKey)
		}
		delete(c.manifests, id)
	}
}

// Close closes the agent connections. Agents keep running.
func (c *Controller) Close() {
	for _, r := range c.remotes {
		r.Client().Close()
	}
}
