// Package shardhost is the reusable core of cmd/shardd: it hosts one
// shard of a deterministic demo training fleet — a full model replica
// trained in lockstep with every other shard by construction (same
// seed, same sample stream, bit-identical math) — and serves the
// checkpoint control protocol for it.
//
// Each host checkpoints only the embedding tables its shard owns (the
// trainer cluster's table -> node assignment), against the shared TCP
// object store: the data plane. The controller tells it when to cut —
// "advance to step N, prepare checkpoint K" — over the control plane.
package shardhost

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/ctrl"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/trainer"
)

// Config configures a shard host.
type Config struct {
	// JobID is the composite job; Shard this host's index of Shards.
	JobID  string
	Shard  int
	Shards int
	// StoreAddr is the TCP object store (data plane) address — a single
	// objstored, or a comma-separated list routed by consistent hashing
	// (see objstore.Connect). A single address is expanded through the
	// fleet membership record when one is published, so every shard
	// routes identically however it was pointed at the store plane.
	StoreAddr string
	// ListenAddr is the control-plane listen address (e.g. "127.0.0.1:0").
	ListenAddr string
	// Seed drives the deterministic model init and sample stream; every
	// shard of a job must use the same seed.
	Seed int64
	// BatchSize is the replica's training batch size; zero means 64.
	BatchSize int
	// TableRows overrides the embedding table sizes (demo default
	// otherwise); Dim the embedding dimension (default 16).
	TableRows []int
	Dim       int
	// Engine is the shard engine template (Policy, Quant, ChunkRows,
	// Uploaders, KeepLast). JobID and Store are filled in by the host.
	Engine ckpt.Config
	// Recover rebuilds the shard engine from the store's manifests and
	// loads the durable fleet epoch on startup, so a restarted host
	// rejoins the fleet (the replica itself re-trains deterministically
	// from the seed to whatever step the next sample requests).
	Recover bool
	// ConnectWait, if positive, keeps retrying the initial store connect
	// for up to this long with jittered exponential backoff. A rejoining
	// fleet typically races the store plane coming back from the same
	// outage; the jitter keeps a herd of restarting shards from probing
	// the stores in lockstep. Zero preserves the single-attempt behavior.
	ConnectWait time.Duration
	// OpTimeout bounds each control operation, including its store I/O;
	// zero means no deadline.
	OpTimeout time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// ReplicaConfig returns the deterministic model config and data spec a
// fleet with the given parameters trains — the restore side builds its
// reference replica from the same values.
func ReplicaConfig(seed int64, tableRows []int, dim int) (model.Config, data.Spec) {
	mcfg := model.DefaultConfig()
	mcfg.Seed = seed
	spec := data.DefaultSpec()
	spec.Seed = seed
	if dim <= 0 {
		dim = 16
	}
	mcfg.EmbedDim = dim
	if len(tableRows) > 0 {
		mcfg.Tables = mcfg.Tables[:0]
		for _, rows := range tableRows {
			mcfg.Tables = append(mcfg.Tables, embedding.TableSpec{Rows: rows, Dim: dim})
		}
		spec.TableRows = append([]int(nil), tableRows...)
	}
	return mcfg, spec
}

// Host runs one shard: a trainer replica, its shard agent, and the
// agent's control server.
type Host struct {
	cfg     Config
	cluster *trainer.Cluster
	gen     *data.Generator
	assign  map[int]int
	store   objstore.Store
	agent   *ctrl.Agent
	srv     *ctrl.AgentServer
}

// Start dials the object store, builds the replica, and begins serving
// the control protocol.
func Start(cfg Config) (*Host, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	mcfg, spec := ReplicaConfig(cfg.Seed, cfg.TableRows, cfg.Dim)
	m, err := model.New(mcfg, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("shardhost: model: %w", err)
	}
	cluster, err := trainer.New(m, trainer.Config{Nodes: cfg.Shards})
	if err != nil {
		return nil, fmt.Errorf("shardhost: cluster: %w", err)
	}
	gen, err := data.NewGenerator(spec)
	if err != nil {
		return nil, fmt.Errorf("shardhost: generator: %w", err)
	}
	store, err := connectStore(cfg)
	if err != nil {
		return nil, fmt.Errorf("shardhost: store: %w", err)
	}
	h := &Host{
		cfg:     cfg,
		cluster: cluster,
		gen:     gen,
		assign:  cluster.TableAssignment(),
		store:   store,
	}
	ecfg := cfg.Engine
	ecfg.Store = store
	agent, err := ctrl.NewAgent(ctrl.AgentConfig{
		JobID:     cfg.JobID,
		Shard:     cfg.Shard,
		Shards:    cfg.Shards,
		Engine:    ecfg,
		Source:    h.snapshotAt,
		Recover:   cfg.Recover,
		OpTimeout: cfg.OpTimeout,
		Logf:      cfg.Logf,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	h.agent = agent
	srv, err := ctrl.NewAgentServer(cfg.ListenAddr, agent)
	if err != nil {
		store.Close()
		return nil, err
	}
	h.srv = srv
	return h, nil
}

// connectStore dials the object store, retrying transport-level
// failures with jittered exponential backoff for up to cfg.ConnectWait.
func connectStore(cfg Config) (objstore.Store, error) {
	deadline := time.Now().Add(cfg.ConnectWait)
	bo := ctrl.NewBackoff(50*time.Millisecond, 2*time.Second)
	for {
		store, err := objstore.Connect(cfg.StoreAddr, objstore.ClientConfig{PoolSize: 8})
		if err == nil {
			return store, nil
		}
		if !errors.Is(err, objstore.ErrStoreUnavailable) || time.Now().After(deadline) {
			return nil, err
		}
		d := bo.Next()
		if cfg.Logf != nil {
			cfg.Logf("store %s unavailable, retrying in %v: %v", cfg.StoreAddr, d, err)
		}
		time.Sleep(d)
	}
}

// snapshotAt advances the replica to exactly the requested global step
// and returns this shard's carved view: its owned tables, their
// modified bitmaps, and the replicated dense state (the agent stores it
// only when designated).
func (h *Host) snapshotAt(ctx context.Context, step uint64) (*ckpt.Snapshot, error) {
	for h.cluster.Stats().Batches < step {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		h.cluster.Step(h.gen.NextBatch(h.cfg.BatchSize))
	}
	if got := h.cluster.Stats().Batches; got != step {
		return nil, fmt.Errorf("shardhost: replica at step %d, past requested cut %d", got, step)
	}
	snap, err := h.cluster.Snapshot(data.ReaderState{NextSample: h.gen.Pos(), BatchSize: h.cfg.BatchSize})
	if err != nil {
		return nil, err
	}
	return ckpt.SubSnapshot(snap, h.assign, h.cfg.Shard), nil
}

// Addr returns the bound control-plane address.
func (h *Host) Addr() string { return h.srv.Addr() }

// Agent returns the hosted shard agent.
func (h *Host) Agent() *ctrl.Agent { return h.agent }

// Close stops the control server, rolls back any in-flight attempt,
// and closes the store connection.
func (h *Host) Close() {
	h.srv.Close()
	h.agent.Close()
	h.store.Close()
}

// Kill simulates a crash: the control server stops serving and the
// store connection drops, but — unlike Close — nothing is rolled back.
// Objects an in-flight attempt already uploaded stay behind as
// unreferenced debris, exactly what a real dead process leaves for the
// controller's abort-and-gc path to handle. Fault-injection hook for
// tests (like objstore's Server.CloseConns).
func (h *Host) Kill() {
	h.srv.Close()
	h.store.Close()
}
