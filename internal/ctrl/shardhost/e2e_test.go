package shardhost

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/ctrl"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/trainer"
	"repro/internal/wire"
)

const (
	e2eSeed  = 7
	e2eBatch = 16
	e2eDim   = 8
)

var e2eRows = []int{256, 256, 512}

// startFleet stands up the full distributed topology on loopback TCP:
// one object-store server (data plane) and n shard hosts, each with its
// own agent server (control plane) and store connection.
func startFleet(t *testing.T, job string, n int) ([]*Host, []string, *objstore.Client) {
	t.Helper()
	backend := objstore.NewMemStore(objstore.MemConfig{})
	srv, err := objstore.NewServer("127.0.0.1:0", backend, objstore.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		backend.Close()
	})
	hosts := make([]*Host, n)
	addrs := make([]string, n)
	for s := 0; s < n; s++ {
		h, err := Start(Config{
			JobID:     job,
			Shard:     s,
			Shards:    n,
			StoreAddr: srv.Addr(),
			Seed:      e2eSeed,
			BatchSize: e2eBatch,
			TableRows: e2eRows,
			Dim:       e2eDim,
			Engine:    ckpt.Config{Policy: ckpt.PolicyOneShot, ChunkRows: 64},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(h.Close)
		hosts[s] = h
		addrs[s] = h.Addr()
	}
	client, err := objstore.Dial(srv.Addr(), objstore.ClientConfig{PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return hosts, addrs, client
}

// reference trains a standalone replica of the fleet's deterministic
// model to the given step — what every host's full replica holds there.
func reference(t *testing.T, shards int, steps int) *model.DLRM {
	t.Helper()
	mcfg, spec := ReplicaConfig(e2eSeed, e2eRows, e2eDim)
	m, err := model.New(mcfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := trainer.New(m, trainer.Config{Nodes: shards})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := data.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		cl.Step(gen.NextBatch(e2eBatch))
	}
	return m
}

// freshModel builds an untrained fleet-shaped model to restore into.
func freshModel(t *testing.T, shards int) *model.DLRM {
	t.Helper()
	mcfg, _ := ReplicaConfig(e2eSeed+1000, e2eRows, e2eDim) // different seed: restore must not lean on init
	m, err := model.New(mcfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// assertBitIdentical fails unless both models hold bit-identical sparse
// weights, accumulators, and dense state.
func assertBitIdentical(t *testing.T, a, b *model.DLRM) {
	t.Helper()
	for _, tab := range a.Sparse.Tables {
		tb := b.Sparse.Table(tab.ID)
		if tb == nil {
			t.Fatalf("table %d missing", tab.ID)
		}
		for i := range tab.Weights.Data {
			if tab.Weights.Data[i] != tb.Weights.Data[i] {
				t.Fatalf("table %d weight %d differs", tab.ID, i)
			}
		}
		for i := range tab.Accum {
			if tab.Accum[i] != tb.Accum[i] {
				t.Fatalf("table %d accum %d differs", tab.ID, i)
			}
		}
	}
	da, err := a.DenseState()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.DenseState()
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("dense state differs")
	}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func TestFleetEndToEndOverTCP(t *testing.T) {
	// The full distributed shape, each boundary a real TCP connection:
	// controller -> 3 shard agents (control plane), agents -> object
	// store (data plane). Two checkpoints — the one-shot policy's full
	// baseline, then an incremental — and a restore that must be
	// bit-identical to a replica trained to the same step.
	const job = "fleet-e2e"
	hosts, addrs, client := startFleet(t, job, 3)
	_ = hosts
	ctx := testCtx(t)

	c, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client,
		// Reverse the address list: discovery must order by shard index.
		Agents: []string{addrs[2], addrs[1], addrs[0]},
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 3 || c.NextID() != 0 {
		t.Fatalf("discovered %d shards, next %d", c.Shards(), c.NextID())
	}

	man0, err := c.Checkpoint(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if man0.Kind != wire.KindFull.String() || man0.ShardCount != 3 || man0.Step != 8 {
		t.Fatalf("first composite = %+v", man0)
	}
	if man0.DenseKey == "" {
		t.Fatal("composite carries no dense state")
	}
	man1, err := c.Checkpoint(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}
	if man1.Kind != wire.KindIncremental.String() || man1.ID != 1 {
		t.Fatalf("second composite = %+v", man1)
	}
	if man1.PayloadBytes >= man0.PayloadBytes {
		t.Fatalf("incremental payload %d not smaller than baseline %d", man1.PayloadBytes, man0.PayloadBytes)
	}

	// Restore on a fresh model over the same TCP store.
	rest, err := ckpt.NewRestorer(job, client)
	if err != nil {
		t.Fatal(err)
	}
	m2 := freshModel(t, 3)
	res, err := rest.RestoreLatest(ctx, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Step != 16 || res.Reader.NextSample != 16*e2eBatch {
		t.Fatalf("restore metadata = step %d reader %d", res.Step, res.Reader.NextSample)
	}
	assertBitIdentical(t, reference(t, 3, 16), m2)

	// A second controller at an epoch the fleet has already seen must be
	// refused — two same-epoch controllers could interleave the commit —
	// while epoch 0 auto-bumps past the incumbent.
	if _, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client, Agents: addrs, Epoch: c.Epoch(),
	}); err == nil {
		t.Fatal("controller at the fleet's current epoch was admitted")
	}
	c2, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client, Agents: addrs, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Epoch() <= c.Epoch() || c2.NextID() != 2 {
		t.Fatalf("successor controller epoch %d next %d, want epoch > %d next 2", c2.Epoch(), c2.NextID(), c.Epoch())
	}
}

func TestAgentKilledBetweenPrepareAndPublishAbortsComposite(t *testing.T) {
	// The acceptance scenario: a fleet writes a full and an incremental
	// checkpoint, then one agent is killed mid-commit — after every
	// shard prepared, before publish. The controller must abort; no
	// composite manifest may exist for the torn attempt; RestoreLatest
	// must fall back to the previous complete checkpoint; and the dead
	// agent's debris must be exactly what `ckptctl gc` sweeps.
	const job = "fleet-kill"
	hosts, addrs, client := startFleet(t, job, 3)
	ctx := testCtx(t)

	killed := false
	c, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client, Agents: addrs,
		AfterPrepare: func() {
			if !killed {
				return
			}
			hosts[1].Kill()
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Checkpoint(ctx, 8); err != nil {
		t.Fatal(err)
	}
	man1, err := c.Checkpoint(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}

	// Kill shard 1 in the window between prepare and publish.
	killed = true
	if _, err := c.Checkpoint(ctx, 24); err == nil {
		t.Fatal("commit with a dead agent should fail")
	}

	// (a) All-or-nothing: no composite manifest for the torn attempt.
	if _, err := client.Get(ctx, wire.ManifestKey(job, 2)); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("torn checkpoint has a composite manifest (err %v)", err)
	}
	// The dead agent's prepared objects really are in the store — the
	// kill hit the window — as unreferenced debris.
	debris, err := client.List(ctx, wire.ShardJobID(job, 1)+"/ckpt/00000002/")
	if err != nil {
		t.Fatal(err)
	}
	if len(debris) == 0 {
		t.Fatal("no debris from the killed agent; the kill missed the prepare->publish window")
	}
	// The surviving agents were aborted: nothing of attempt 2 remains
	// in their scopes.
	for _, s := range []int{0, 2} {
		keys, err := client.List(ctx, wire.ShardJobID(job, s)+"/ckpt/00000002/")
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 0 {
			t.Fatalf("surviving shard %d kept %d aborted objects: %v", s, len(keys), keys)
		}
	}

	// (b) RestoreLatest falls back to the previous complete checkpoint.
	m2 := freshModel(t, 3)
	res, err := ckptRestoreLatest(ctx, t, job, client, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[0].ID != man1.ID {
		t.Fatalf("fell back to checkpoint %d, want %d", res.Manifests[0].ID, man1.ID)
	}
	assertBitIdentical(t, reference(t, 3, 16), m2)

	// (c) The gc sweep deletes exactly the dead agent's debris and
	// nothing the surviving checkpoints reference.
	report, err := ckpt.SweepOrphans(ctx, job, client, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Orphans) != len(debris) {
		t.Fatalf("sweep removed %d objects %v, want the %d debris objects %v",
			len(report.Orphans), report.Orphans, len(debris), debris)
	}
	for _, k := range report.Orphans {
		if !strings.HasPrefix(k, wire.ShardJobID(job, 1)+"/ckpt/00000002/") {
			t.Fatalf("sweep removed non-debris object %s", k)
		}
	}
	// Still restorable, still identical, after the sweep.
	m3 := freshModel(t, 3)
	if _, err := ckptRestoreLatest(ctx, t, job, client, m3); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, m2, m3)
}

func ckptRestoreLatest(ctx context.Context, t *testing.T, job string, store *objstore.Client, m *model.DLRM) (*ckpt.RestoreResult, error) {
	t.Helper()
	rest, err := ckpt.NewRestorer(job, store)
	if err != nil {
		t.Fatal(err)
	}
	return rest.RestoreLatest(ctx, m)
}
