package shardhost

import (
	"errors"
	"fmt"
	"os/exec"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/ctrl"
	"repro/internal/objstore"
	"repro/internal/wire"
)

// startSelfHealFleet is startFleet with recovery enabled on every host,
// also returning the store address so tests can restart hosts.
func startSelfHealFleet(t *testing.T, job string, n int) ([]*Host, []string, *objstore.Client, string) {
	t.Helper()
	backend := objstore.NewMemStore(objstore.MemConfig{})
	srv, err := objstore.NewServer("127.0.0.1:0", backend, objstore.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		backend.Close()
	})
	hosts := make([]*Host, n)
	addrs := make([]string, n)
	for s := 0; s < n; s++ {
		h, err := Start(selfHealHostConfig(job, s, n, srv.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(h.Close)
		hosts[s] = h
		addrs[s] = h.Addr()
	}
	client, err := objstore.Dial(srv.Addr(), objstore.ClientConfig{PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return hosts, addrs, client, srv.Addr()
}

func selfHealHostConfig(job string, shard, shards int, storeAddr string) Config {
	return Config{
		JobID:     job,
		Shard:     shard,
		Shards:    shards,
		StoreAddr: storeAddr,
		Seed:      e2eSeed,
		BatchSize: e2eBatch,
		TableRows: e2eRows,
		Dim:       e2eDim,
		Engine:    ckpt.Config{Policy: ckpt.PolicyOneShot, ChunkRows: 64},
		Recover:   true,
	}
}

// TestKilledShardRejoinsAndNextCompositeCommitsBitIdentically is the
// tentpole's rejoin acceptance test, in-process: a shard host is killed
// mid-commit (after prepare, before publish), the attempt aborts, and a
// fresh host started in its place — empty process state, recovery on —
// passes NextID-consensus discovery. The retried composite then commits
// and restores bit-identically to a never-crashed replica.
func TestKilledShardRejoinsAndNextCompositeCommitsBitIdentically(t *testing.T) {
	const job = "fleet-rejoin"
	hosts, addrs, client, storeAddr := startSelfHealFleet(t, job, 3)
	ctx := testCtx(t)

	killed := false
	c1, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client, Agents: addrs,
		AfterPrepare: func() {
			if killed {
				hosts[1].Kill()
			}
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Checkpoint(ctx, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Checkpoint(ctx, 16); err != nil {
		t.Fatal(err)
	}
	killed = true
	if _, err := c1.Checkpoint(ctx, 24); err == nil {
		t.Fatal("commit with a killed shard host should fail")
	}
	c1.Close()

	// Restart shard 1 from nothing: its engine state exists only in the
	// store now.
	h1, err := Start(selfHealHostConfig(job, 1, 3, storeAddr))
	if err != nil {
		t.Fatalf("restart shard 1: %v", err)
	}
	t.Cleanup(h1.Close)
	addrs[1] = h1.Addr()

	// Discovery must succeed — the rejoined agent agrees on the next ID.
	c2, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client, Agents: addrs, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("discovery after rejoin: %v", err)
	}
	defer c2.Close()
	if c2.NextID() != 2 {
		t.Fatalf("fleet resumed at next id %d, want 2", c2.NextID())
	}
	man, err := c2.Checkpoint(ctx, 24)
	if err != nil {
		t.Fatalf("composite after rejoin: %v", err)
	}
	if man.ID != 2 || man.Step != 24 || man.ShardCount != 3 {
		t.Fatalf("composite after rejoin = %+v", man)
	}

	m2 := freshModel(t, 3)
	res, err := ckptRestoreLatest(ctx, t, job, client, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[0].ID != 2 || res.Step != 24 {
		t.Fatalf("restored checkpoint %d step %d, want 2 step 24", res.Manifests[0].ID, res.Step)
	}
	assertBitIdentical(t, reference(t, 3, 24), m2)
}

// TestStandbyControllerTakesOverLeaseAndResumesChain is the tentpole's
// failover acceptance test: the lease-holding controller goes silent,
// the standby acquires the lease at the next epoch without any manual
// assignment, fences out the deposed leader, and resumes the checkpoint
// chain with no ID gaps and no duplicate composites.
func TestStandbyControllerTakesOverLeaseAndResumesChain(t *testing.T) {
	const job = "fleet-standby"
	_, addrs, client, _ := startSelfHealFleet(t, job, 2)
	ctx := testCtx(t)

	regA, err := ctrl.NewRegister(ctrl.RegisterConfig{
		JobID: job, Store: client, Holder: "primary",
		TTL: 500 * time.Millisecond, Settle: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	leaseA, err := regA.Acquire(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	cA, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client, Agents: addrs, Lease: leaseA, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cA.Close()
	if _, err := cA.Checkpoint(ctx, 8); err != nil {
		t.Fatal(err)
	}

	// The leader stops renewing (crashed, partitioned — the register
	// cannot tell). The standby blocks on the lease and takes over once
	// it lapses.
	regB, err := ctrl.NewRegister(ctrl.RegisterConfig{
		JobID: job, Store: client, Holder: "standby",
		TTL: 500 * time.Millisecond, Settle: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	leaseB, err := regB.WaitAcquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if leaseB.Epoch() != leaseA.Epoch()+1 {
		t.Fatalf("standby epoch = %d, want %d (granted by the register, not a flag)",
			leaseB.Epoch(), leaseA.Epoch()+1)
	}
	cB, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client, Agents: addrs, Lease: leaseB, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("standby discovery: %v", err)
	}
	defer cB.Close()
	man1, err := cB.Checkpoint(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}
	if man1.ID != 1 {
		t.Fatalf("standby resumed at id %d, want 1 (no gap, no duplicate)", man1.ID)
	}

	// The deposed leader must refuse to commit: its lease is gone.
	if _, err := cA.Checkpoint(ctx, 24); !errors.Is(err, ctrl.ErrLeaseHeld) {
		t.Fatalf("deposed leader checkpoint err = %v, want ErrLeaseHeld", err)
	}
	man2, err := cB.Checkpoint(ctx, 24)
	if err != nil {
		t.Fatal(err)
	}
	if man2.ID != 2 {
		t.Fatalf("chain continued at id %d, want 2", man2.ID)
	}

	// The composite sequence is exactly 0,1,2 and restores bit-identically.
	rest, err := ckpt.NewRestorer(job, client)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := rest.ListManifests(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("found %d composites, want 3", len(ms))
	}
	for i, m := range ms {
		if m.ID != i {
			t.Fatalf("composite sequence has gap or duplicate: position %d holds id %d", i, m.ID)
		}
	}
	m2 := freshModel(t, 2)
	if _, err := rest.RestoreLatest(ctx, m2); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, reference(t, 2, 24), m2)
}

// TestSeparateProcessSharddRejoinAfterSIGKILL runs the rejoin
// acceptance scenario with real OS processes: a shardd daemon is
// SIGKILLed mid-commit, a fresh shardd process (default -recover) takes
// its place, discovery succeeds, and the next composite commits and
// restores bit-identically.
func TestSeparateProcessSharddRejoinAfterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and forks real binaries; skipped with -short")
	}
	root := repoRoot(t)
	dir := t.TempDir()
	objstored := buildCmd(t, root, dir, "objstored")
	shardd := buildCmd(t, root, dir, "shardd")

	_, storeAddr := startProc(t, objstored, "-addr", "127.0.0.1:0", "-stats", "0")

	const job = "proc-rejoin"
	const shards = 2
	sharddArgs := func(s int) []string {
		return []string{
			"-addr", "127.0.0.1:0",
			"-store", storeAddr,
			"-job", job,
			"-shard", fmt.Sprint(s),
			"-shards", fmt.Sprint(shards),
			"-seed", "11",
			"-batch", "8",
			"-policy", "oneshot",
		}
	}
	procs := make([]*exec.Cmd, shards)
	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		procs[s], addrs[s] = startProc(t, shardd, sharddArgs(s)...)
	}

	client, err := objstore.Dial(storeAddr, objstore.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := testCtx(t)

	kill := false
	c1, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client, Agents: addrs,
		AfterPrepare: func() {
			if kill {
				procs[1].Process.Kill()
				procs[1].Wait()
			}
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Checkpoint(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Checkpoint(ctx, 8); err != nil {
		t.Fatal(err)
	}
	// SIGKILL shardd[1] between its prepare and publish; the attempt tears.
	kill = true
	if _, err := c1.Checkpoint(ctx, 12); err == nil {
		t.Fatal("commit with a SIGKILLed shardd should fail")
	}
	c1.Close()

	// A fresh shardd process rejoins from nothing but the store.
	_, addr := startProc(t, shardd, sharddArgs(1)...)
	addrs[1] = addr
	c2, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client, Agents: addrs, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("discovery after process rejoin: %v", err)
	}
	defer c2.Close()
	if c2.NextID() != 2 {
		t.Fatalf("fleet resumed at next id %d, want 2", c2.NextID())
	}
	man, err := c2.Checkpoint(ctx, 12)
	if err != nil {
		t.Fatalf("composite after process rejoin: %v", err)
	}
	if man.ID != 2 || man.Step != 12 {
		t.Fatalf("composite after rejoin = id %d step %d, want 2/12", man.ID, man.Step)
	}
	if _, err := client.Get(ctx, wire.ManifestKey(job, 2)); err != nil {
		t.Fatalf("committed composite manifest missing: %v", err)
	}

	m2 := procFreshModel(t, shards)
	res, err := ckptRestoreLatest(ctx, t, job, client, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[0].ID != 2 || res.Step != 12 {
		t.Fatalf("restored checkpoint %d step %d, want 2 step 12", res.Manifests[0].ID, res.Step)
	}
	assertBitIdentical(t, procReference(t, shards, 12), m2)
}
