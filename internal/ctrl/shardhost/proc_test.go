package shardhost

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ctrl"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/trainer"
	"repro/internal/wire"
)

// procReference trains a replica matching the shardd defaults (demo
// tables, dim 16) at seed 11 / batch 8 to the given step.
func procReference(t *testing.T, shards, steps int) *model.DLRM {
	t.Helper()
	mcfg, spec := ReplicaConfig(11, nil, 0)
	m, err := model.New(mcfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := trainer.New(m, trainer.Config{Nodes: shards})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := data.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		cl.Step(gen.NextBatch(8))
	}
	return m
}

func procFreshModel(t *testing.T, shards int) *model.DLRM {
	t.Helper()
	mcfg, _ := ReplicaConfig(2025, nil, 0) // different seed: restore must not lean on init
	m, err := model.New(mcfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// buildCmd compiles one cmd/ binary into dir and returns its path.
func buildCmd(t *testing.T, root, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// startProc launches a daemon whose first stdout line is its bound
// address, and returns the process plus that address.
func startProc(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			addrCh <- sc.Text()
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			t.Fatalf("%s exited before printing its address", bin)
		}
		return cmd, addr
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not print its address in time", bin)
	}
	panic("unreachable")
}

func TestSeparateProcessFleetCommitIsAllOrNothing(t *testing.T) {
	// The acceptance topology with real OS processes: objstored and two
	// shardd daemons forked as separate binaries, the controller (this
	// test) driving the commit over TCP. Two checkpoints land (full +
	// incremental), then one shardd is SIGKILLed between prepare and
	// publish: the composite commit must be all-or-nothing.
	if testing.Short() {
		t.Skip("builds and forks real binaries; skipped with -short")
	}
	root := repoRoot(t)
	dir := t.TempDir()
	objstored := buildCmd(t, root, dir, "objstored")
	shardd := buildCmd(t, root, dir, "shardd")

	_, storeAddr := startProc(t, objstored, "-addr", "127.0.0.1:0", "-stats", "0")

	const job = "proc-fleet"
	const shards = 2
	procs := make([]*exec.Cmd, shards)
	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		procs[s], addrs[s] = startProc(t, shardd,
			"-addr", "127.0.0.1:0",
			"-store", storeAddr,
			"-job", job,
			"-shard", fmt.Sprint(s),
			"-shards", fmt.Sprint(shards),
			"-seed", "11",
			"-batch", "8",
			"-policy", "oneshot",
		)
	}

	client, err := objstore.Dial(storeAddr, objstore.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	kill := false
	c, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: job, Store: client, Agents: addrs,
		AfterPrepare: func() {
			if !kill {
				return
			}
			// SIGKILL: the daemon gets no chance to clean up.
			procs[1].Process.Kill()
			procs[1].Wait()
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	man0, err := c.Checkpoint(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if man0.Kind != wire.KindFull.String() || man0.ShardCount != shards {
		t.Fatalf("first composite = %+v", man0)
	}
	man1, err := c.Checkpoint(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if man1.Kind != wire.KindIncremental.String() {
		t.Fatalf("second composite kind = %s, want incremental", man1.Kind)
	}

	// Round 3: kill shardd[1] after it prepared, before publish.
	kill = true
	if _, err := c.Checkpoint(ctx, 12); err == nil {
		t.Fatal("commit with a SIGKILLed shardd should fail")
	}
	if _, err := client.Get(ctx, wire.ManifestKey(job, 2)); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("torn checkpoint has a composite manifest (err %v)", err)
	}
	// The killed process left debris; the survivors were aborted clean.
	debris, err := client.List(ctx, wire.ShardJobID(job, 1)+"/ckpt/00000002/")
	if err != nil {
		t.Fatal(err)
	}
	if len(debris) == 0 {
		t.Fatal("no debris from the killed shardd; the kill missed the prepare->publish window")
	}
	clean, err := client.List(ctx, wire.ShardJobID(job, 0)+"/ckpt/00000002/")
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Fatalf("surviving shardd kept %d aborted objects: %v", len(clean), clean)
	}

	// RestoreLatest falls back to the incremental committed at step 8,
	// bit-identical to a replica trained there.
	mcfgRef := 8
	m2 := procFreshModel(t, shards)
	res, err := ckptRestoreLatest(ctx, t, job, client, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[0].ID != 1 || res.Step != uint64(mcfgRef) {
		t.Fatalf("fell back to checkpoint %d step %d, want 1 step %d", res.Manifests[0].ID, res.Step, mcfgRef)
	}
	assertBitIdentical(t, procReference(t, shards, mcfgRef), m2)
}
