package ctrl

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// announceWriteTimeout bounds one frame write to a subscriber; a peer
// that cannot drain within it is dropped rather than back-pressuring
// the commit path.
const announceWriteTimeout = 5 * time.Second

// subQueueLen buffers announcements per subscriber. Checkpoints land at
// human timescales, so a reader this far behind is wedged, not slow —
// it gets disconnected and re-syncs from the store when it recovers.
const subQueueLen = 64

// Announcer is the controller's announce endpoint: serving replicas
// subscribe to it over the CNC1 framed protocol and receive a pushed
// AnnounceEvent for every composite checkpoint that commits.
//
// The announcer outlives any single controller: on failover the new
// leader reuses the same endpoint (deployments front it like a stable
// VIP), seeding it with its epoch via SetPosition. Subscribers fence on
// the frame epoch, so an announcement from a deposed controller can at
// worst trigger a redundant re-sync — never a state rollback, because
// replicas treat committed manifests in the store as the only truth.
type Announcer struct {
	jobID string
	ln    net.Listener
	logf  func(format string, args ...any)

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	epoch  uint64
	nextID int
	closed bool
	wg     sync.WaitGroup
}

type subscriber struct {
	conn net.Conn
	ch   chan announceFrame
}

type announceFrame struct {
	epoch uint64
	body  []byte
}

// NewAnnouncer listens on addr and serves subscriptions for the job.
func NewAnnouncer(addr, jobID string, logf func(format string, args ...any)) (*Announcer, error) {
	if jobID == "" {
		return nil, fmt.Errorf("ctrl: empty job ID")
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctrl: announce listen: %w", err)
	}
	a := &Announcer{jobID: jobID, ln: ln, logf: logf, subs: make(map[*subscriber]struct{})}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the bound announce address.
func (a *Announcer) Addr() string { return a.ln.Addr().String() }

// SetPosition seeds the announcer's view of the job — reported to new
// subscribers — without announcing anything. A controller calls it
// after discovery so readers subscribing between checkpoints still
// learn the current epoch and how many composites exist.
func (a *Announcer) SetPosition(epoch uint64, nextID int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if epoch > a.epoch {
		a.epoch = epoch
	}
	if nextID > a.nextID {
		a.nextID = nextID
	}
}

// Announce fans a committed composite out to every subscriber. It never
// blocks on a slow peer: a subscriber whose queue is full is dropped.
func (a *Announcer) Announce(epoch uint64, man *wire.Manifest) {
	body, err := json.Marshal(&AnnounceEvent{CkptID: man.ID, Step: man.Step, Kind: man.Kind})
	if err != nil {
		a.logf("ctrl announcer: encode event: %v", err)
		return
	}
	frame := announceFrame{epoch: epoch, body: body}
	a.mu.Lock()
	defer a.mu.Unlock()
	if epoch > a.epoch {
		a.epoch = epoch
	}
	if man.ID+1 > a.nextID {
		a.nextID = man.ID + 1
	}
	for sub := range a.subs {
		select {
		case sub.ch <- frame:
		default:
			a.logf("ctrl announcer: dropping wedged subscriber %s", sub.conn.RemoteAddr())
			delete(a.subs, sub)
			close(sub.ch)
			sub.conn.Close()
		}
	}
}

// Subscribers reports the live subscription count (for tests and
// monitoring).
func (a *Announcer) Subscribers() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.subs)
}

func (a *Announcer) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			a.mu.Lock()
			closed := a.closed
			a.mu.Unlock()
			if !closed {
				a.logf("ctrl announcer: accept: %v", err)
			}
			return
		}
		a.wg.Add(1)
		go a.serveConn(conn)
	}
}

func (a *Announcer) serveConn(conn net.Conn) {
	defer a.wg.Done()
	_ = conn.SetReadDeadline(time.Now().Add(announceWriteTimeout))
	br := bufio.NewReaderSize(conn, 4<<10)
	req, err := readRequest(br)
	if err != nil {
		conn.Close()
		return
	}
	if req.op != opSubscribe {
		_ = writeResponse(conn, statusError, []byte(fmt.Sprintf("ctrl: announce endpoint got op %d", req.op)))
		conn.Close()
		return
	}
	var args SubscribeArgs
	if err := json.Unmarshal(req.body, &args); err != nil {
		_ = writeResponse(conn, statusError, []byte("ctrl: bad subscribe body"))
		conn.Close()
		return
	}
	if args.JobID != a.jobID {
		_ = writeResponse(conn, statusError, []byte(fmt.Sprintf("ctrl: announcer serves job %q, not %q", a.jobID, args.JobID)))
		conn.Close()
		return
	}

	sub := &subscriber{conn: conn, ch: make(chan announceFrame, subQueueLen)}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		_ = writeResponse(conn, statusError, []byte("ctrl: announcer closed"))
		conn.Close()
		return
	}
	reply, _ := json.Marshal(&SubscribeReply{JobID: a.jobID, Epoch: a.epoch, NextID: a.nextID})
	a.subs[sub] = struct{}{}
	a.mu.Unlock()

	_ = conn.SetReadDeadline(time.Time{})
	_ = conn.SetWriteDeadline(time.Now().Add(announceWriteTimeout))
	if err := writeResponse(conn, statusOK, reply); err != nil {
		a.drop(sub)
		return
	}

	// Reader side: subscribers never send again; a read returning means
	// the peer hung up (or sent garbage) — either way, drop it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1)
		_ = conn.SetReadDeadline(time.Time{})
		_, _ = conn.Read(buf)
	}()

	for {
		select {
		case frame, ok := <-sub.ch:
			if !ok {
				conn.Close()
				return
			}
			_ = conn.SetWriteDeadline(time.Now().Add(announceWriteTimeout))
			if err := writeRequest(conn, &request{op: opAnnounce, epoch: frame.epoch, body: frame.body}); err != nil {
				a.drop(sub)
				return
			}
		case <-done:
			a.drop(sub)
			return
		}
	}
}

// drop unregisters a subscriber (if still registered) and closes its
// connection.
func (a *Announcer) drop(sub *subscriber) {
	a.mu.Lock()
	if _, ok := a.subs[sub]; ok {
		delete(a.subs, sub)
		close(sub.ch)
	}
	a.mu.Unlock()
	sub.conn.Close()
}

// Close stops the announcer and disconnects all subscribers.
func (a *Announcer) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	subs := make([]*subscriber, 0, len(a.subs))
	for sub := range a.subs {
		subs = append(subs, sub)
		delete(a.subs, sub)
		close(sub.ch)
	}
	a.mu.Unlock()
	a.ln.Close()
	for _, sub := range subs {
		sub.conn.Close()
	}
	a.wg.Wait()
}

// Subscription is the reader side of the announce stream: one framed
// TCP connection on which the announcer pushes an AnnounceEvent per
// committed composite.
type Subscription struct {
	conn  net.Conn
	br    *bufio.Reader
	reply SubscribeReply

	mu     sync.Mutex
	closed bool
}

// Subscribe dials an announce endpoint and opens the stream. The
// context bounds dialing and the subscribe handshake only.
func Subscribe(ctx context.Context, addr, jobID string) (*Subscription, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctrl: subscribe dial %s: %w", addr, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Now().Add(announceWriteTimeout))
	}
	body, err := json.Marshal(&SubscribeArgs{JobID: jobID})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := writeRequest(conn, &request{op: opSubscribe, body: body}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ctrl: subscribe %s: %w", addr, err)
	}
	br := bufio.NewReaderSize(conn, 16<<10)
	status, payload, err := readResponse(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ctrl: subscribe %s: %w", addr, err)
	}
	if status != statusOK {
		conn.Close()
		return nil, fmt.Errorf("ctrl: subscribe %s: %s", addr, payload)
	}
	s := &Subscription{conn: conn, br: br}
	if err := json.Unmarshal(payload, &s.reply); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ctrl: subscribe %s: bad reply: %w", addr, err)
	}
	_ = conn.SetDeadline(time.Time{})
	return s, nil
}

// Reply returns the handshake reply: the job's epoch and next
// checkpoint ID as of subscribe time.
func (s *Subscription) Reply() SubscribeReply { return s.reply }

// Next blocks until the next announcement arrives and returns it with
// the epoch it was announced under. The context's deadline, if any,
// bounds the wait; Close from another goroutine also unblocks it.
func (s *Subscription) Next(ctx context.Context) (*AnnounceEvent, uint64, error) {
	if dl, ok := ctx.Deadline(); ok {
		_ = s.conn.SetReadDeadline(dl)
	} else {
		_ = s.conn.SetReadDeadline(time.Time{})
	}
	req, err := readRequest(s.br)
	if err != nil {
		if ce := ctx.Err(); ce != nil {
			return nil, 0, ce
		}
		return nil, 0, fmt.Errorf("ctrl: announce stream: %w", err)
	}
	if req.op != opAnnounce {
		return nil, 0, fmt.Errorf("ctrl: announce stream: unexpected op %d", req.op)
	}
	var ev AnnounceEvent
	if err := json.Unmarshal(req.body, &ev); err != nil {
		return nil, 0, fmt.Errorf("ctrl: announce stream: bad event: %w", err)
	}
	return &ev, req.epoch, nil
}

// Close tears the subscription down; a concurrent Next unblocks with an
// error.
func (s *Subscription) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.conn.Close()
}
