// Package model implements the dense half of the recommendation model of
// §2.1: bottom and top multi-layer perceptrons joined by a dot-product
// feature interaction, trained with BCE loss. Together with
// internal/embedding it forms a complete, genuinely trainable DLRM — the
// substrate Check-N-Run checkpoints.
//
// The MLPs are data-parallel in the paper (replicated on every GPU with an
// AllReduce in the backward pass); here a single authoritative copy is
// updated after gradient accumulation over the batch, which is exactly the
// arithmetic a synchronous AllReduce produces.
package model

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// layer is one fully connected layer with optional ReLU.
type layer struct {
	w    *tensor.Matrix // out x in
	b    tensor.Vector  // out
	relu bool

	// Gradient accumulators, cleared by step().
	gw *tensor.Matrix
	gb tensor.Vector
}

// MLP is a feed-forward stack. All hidden layers use ReLU; the final layer
// is linear (its output is either interaction features or the logit).
type MLP struct {
	layers []*layer
	dims   []int
}

// NewMLP builds an MLP with the given layer sizes, e.g. dims = [13, 64, 16]
// builds 13→64(ReLU)→16(linear). rng seeds Xavier initialization.
func NewMLP(dims []int, rng *rand.Rand) (*MLP, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("model: MLP needs >= 2 dims, got %v", dims)
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("model: MLP dim must be positive: %v", dims)
		}
	}
	m := &MLP{dims: append([]int(nil), dims...)}
	for i := 0; i+1 < len(dims); i++ {
		l := &layer{
			w:    tensor.NewMatrix(dims[i+1], dims[i]),
			b:    make(tensor.Vector, dims[i+1]),
			gw:   tensor.NewMatrix(dims[i+1], dims[i]),
			gb:   make(tensor.Vector, dims[i+1]),
			relu: i+2 < len(dims), // last layer linear
		}
		l.w.XavierInit(rng)
		m.layers = append(m.layers, l)
	}
	return m, nil
}

// InDim and OutDim report the interface dimensions of the stack.
func (m *MLP) InDim() int  { return m.dims[0] }
func (m *MLP) OutDim() int { return m.dims[len(m.dims)-1] }

// tape holds per-sample forward activations needed by the backward pass.
type tape struct {
	inputs []tensor.Vector // input to each layer
	masks  [][]bool        // relu masks per layer (nil for linear)
	out    tensor.Vector
}

// forward runs x through the stack, recording a tape for backward.
func (m *MLP) forward(x tensor.Vector) *tape {
	if len(x) != m.InDim() {
		panic(fmt.Sprintf("model: forward input dim %d != %d", len(x), m.InDim()))
	}
	t := &tape{}
	a := x
	for _, l := range m.layers {
		t.inputs = append(t.inputs, append(tensor.Vector(nil), a...))
		out := make(tensor.Vector, len(l.b))
		l.w.MatVec(a, out)
		tensor.Axpy(1, l.b, out)
		if l.relu {
			mask := make([]bool, len(out))
			tensor.ReLUVec(out, mask)
			t.masks = append(t.masks, mask)
		} else {
			t.masks = append(t.masks, nil)
		}
		a = out
	}
	t.out = a
	return t
}

// backward accumulates gradients for one sample given dLoss/dOut, and
// returns dLoss/dInput. Gradients apply only at step().
func (m *MLP) backward(t *tape, gradOut tensor.Vector) tensor.Vector {
	if len(gradOut) != m.OutDim() {
		panic(fmt.Sprintf("model: backward grad dim %d != %d", len(gradOut), m.OutDim()))
	}
	g := append(tensor.Vector(nil), gradOut...)
	for i := len(m.layers) - 1; i >= 0; i-- {
		l := m.layers[i]
		if l.relu {
			for j := range g {
				if !t.masks[i][j] {
					g[j] = 0
				}
			}
		}
		l.gw.AddOuter(1, g, t.inputs[i])
		tensor.Axpy(1, g, l.gb)
		if i > 0 {
			next := make(tensor.Vector, l.w.Cols)
			l.w.MatVecT(g, next)
			g = next
		} else {
			next := make(tensor.Vector, l.w.Cols)
			l.w.MatVecT(g, next)
			return next
		}
	}
	return nil // unreachable: loop always returns at i == 0
}

// step applies accumulated gradients with SGD at learning rate lr scaled by
// 1/batch, then clears the accumulators. This is the synchronous-AllReduce
// equivalent update.
func (m *MLP) step(lr float32, batch int) {
	if batch <= 0 {
		return
	}
	scale := lr / float32(batch)
	for _, l := range m.layers {
		for i, g := range l.gw.Data {
			l.w.Data[i] -= scale * g
			l.gw.Data[i] = 0
		}
		for i, g := range l.gb {
			l.b[i] -= scale * g
			l.gb[i] = 0
		}
	}
}

// ParamCount returns the number of fp32 parameters in the stack.
func (m *MLP) ParamCount() int {
	n := 0
	for _, l := range m.layers {
		n += len(l.w.Data) + len(l.b)
	}
	return n
}

// MarshalBinary serializes dims and all weights/biases (little-endian
// fp32). The MLP is replicated across GPUs in the paper, so a checkpoint
// stores exactly one copy read from a single GPU (§4.1).
func (m *MLP) MarshalBinary() ([]byte, error) {
	size := 4 + 4*len(m.dims)
	for _, l := range m.layers {
		size += 4 * (len(l.w.Data) + len(l.b))
	}
	out := make([]byte, 0, size)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(m.dims)))
	out = append(out, b4[:]...)
	for _, d := range m.dims {
		binary.LittleEndian.PutUint32(b4[:], uint32(d))
		out = append(out, b4[:]...)
	}
	appendF32 := func(v float32) {
		binary.LittleEndian.PutUint32(b4[:], math.Float32bits(v))
		out = append(out, b4[:]...)
	}
	for _, l := range m.layers {
		for _, v := range l.w.Data {
			appendF32(v)
		}
		for _, v := range l.b {
			appendF32(v)
		}
	}
	return out, nil
}

// UnmarshalBinary restores an MLP serialized by MarshalBinary. The dims in
// the payload must match the receiver's architecture.
func (m *MLP) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("model: short MLP payload")
	}
	nd := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if nd != len(m.dims) {
		return fmt.Errorf("model: dims count %d != %d", nd, len(m.dims))
	}
	if len(data) < 4*nd {
		return fmt.Errorf("model: truncated dims")
	}
	for i := 0; i < nd; i++ {
		if got := int(binary.LittleEndian.Uint32(data[i*4:])); got != m.dims[i] {
			return fmt.Errorf("model: dim %d mismatch: %d != %d", i, got, m.dims[i])
		}
	}
	data = data[4*nd:]
	need := 0
	for _, l := range m.layers {
		need += 4 * (len(l.w.Data) + len(l.b))
	}
	if len(data) != need {
		return fmt.Errorf("model: payload %d bytes, want %d", len(data), need)
	}
	off := 0
	readF32 := func() float32 {
		v := math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		return v
	}
	for _, l := range m.layers {
		for i := range l.w.Data {
			l.w.Data[i] = readF32()
		}
		for i := range l.b {
			l.b[i] = readF32()
		}
	}
	return nil
}

// Clone deep-copies the MLP (used when snapshotting trainer state).
func (m *MLP) Clone() *MLP {
	c := &MLP{dims: append([]int(nil), m.dims...)}
	for _, l := range m.layers {
		c.layers = append(c.layers, &layer{
			w:    l.w.Clone(),
			b:    append(tensor.Vector(nil), l.b...),
			gw:   tensor.NewMatrix(l.gw.Rows, l.gw.Cols),
			gb:   make(tensor.Vector, len(l.gb)),
			relu: l.relu,
		})
	}
	return c
}
