package model

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/tensor"
)

// The gathered-training API splits one synchronous iteration into the
// three phases of the paper's hybrid-parallel trainer (§2.2):
//
//  1. GatherSparse — each node looks up (copies) the embedding rows its
//     shards own for every sample: the forward AlltoAll payload.
//  2. TrainGathered — the data-parallel dense computation: forward,
//     loss, backward; MLP updates applied (AllReduce-equivalent);
//     per-sample embedding gradients returned: the backward AlltoAll
//     payload.
//  3. Table.ApplyGrad per node — each node applies the gradients for its
//     own rows (the trainer package runs this concurrently per node and
//     marks the tracker during this window, as §5.1.1 hides tracking in
//     AlltoAll).
//
// Unlike TrainBatch (which applies sparse updates sample-by-sample), the
// gathered path reads all embedding rows before any update, which is
// exactly what a synchronous distributed iteration does.

// Gathered holds the embedding vectors fetched for a batch:
// Vecs[sample][table] is a copy of the row the sample references.
type Gathered struct {
	Vecs [][]tensor.Vector
}

// GatherSparseFor copies the embedding vectors for the given tables only
// (a node's local shard view). Missing tables in tableSet are skipped;
// entries stay nil until every owning node has gathered.
func (d *DLRM) GatherSparseFor(b *data.Batch, g *Gathered, tableSet map[int]bool) {
	if g.Vecs == nil {
		g.Vecs = make([][]tensor.Vector, len(b.Samples))
		for i := range g.Vecs {
			g.Vecs[i] = make([]tensor.Vector, len(d.cfg.Tables))
		}
	}
	for i := range b.Samples {
		s := &b.Samples[i]
		for t, id := range s.Sparse {
			if !tableSet[t] {
				continue
			}
			v := make(tensor.Vector, d.cfg.EmbedDim)
			d.Sparse.Table(t).CopyRow(id, v)
			g.Vecs[i][t] = v
		}
	}
}

// GatherSparse copies all tables' vectors (single-node convenience).
func (d *DLRM) GatherSparse(b *data.Batch) *Gathered {
	all := make(map[int]bool, len(d.cfg.Tables))
	for t := range d.cfg.Tables {
		all[t] = true
	}
	g := &Gathered{}
	d.GatherSparseFor(b, g, all)
	return g
}

// SparseGrads holds per-sample, per-table embedding gradients produced by
// TrainGathered.
type SparseGrads struct {
	// Grads[sample][table] is the gradient w.r.t. the sample's embedding
	// vector for that table.
	Grads [][]tensor.Vector
}

// TrainGathered runs the dense phase of one synchronous iteration over
// pre-gathered embedding vectors. It applies the MLP updates and returns
// the mean loss plus the sparse gradients for phase 3. It panics if g is
// incompletely gathered.
func (d *DLRM) TrainGathered(b *data.Batch, g *Gathered) (float32, *SparseGrads) {
	if len(g.Vecs) != len(b.Samples) {
		panic(fmt.Sprintf("model: gathered %d samples, batch has %d", len(g.Vecs), len(b.Samples)))
	}
	sg := &SparseGrads{Grads: make([][]tensor.Vector, len(b.Samples))}
	var totalLoss float64
	for i := range b.Samples {
		s := &b.Samples[i]
		vecs := make([]tensor.Vector, 0, len(s.Sparse)+1)
		botTape := d.Bottom.forward(s.Dense)
		vecs = append(vecs, botTape.out)
		for t := range s.Sparse {
			v := g.Vecs[i][t]
			if v == nil {
				panic(fmt.Sprintf("model: sample %d table %d not gathered", i, t))
			}
			vecs = append(vecs, v)
		}

		feats := make(tensor.Vector, d.cfg.EmbedDim+d.nInteract)
		copy(feats, botTape.out)
		k := d.cfg.EmbedDim
		for a := 0; a < len(vecs); a++ {
			for bidx := a + 1; bidx < len(vecs); bidx++ {
				feats[k] = tensor.Dot(vecs[a], vecs[bidx])
				k++
			}
		}
		topTape := d.Top.forward(feats)
		logit := topTape.out[0]
		totalLoss += float64(tensor.BCEWithLogits(logit, s.Label))
		gLogit := tensor.BCEGrad(logit, s.Label)

		gradFeats := d.Top.backward(topTape, tensor.Vector{gLogit})
		gradVecs := make([]tensor.Vector, len(vecs))
		for v := range gradVecs {
			gradVecs[v] = make(tensor.Vector, d.cfg.EmbedDim)
		}
		copy(gradVecs[0], gradFeats[:d.cfg.EmbedDim])
		k = d.cfg.EmbedDim
		for a := 0; a < len(vecs); a++ {
			for bidx := a + 1; bidx < len(vecs); bidx++ {
				gv := gradFeats[k]
				k++
				if gv == 0 {
					continue
				}
				tensor.Axpy(gv, vecs[bidx], gradVecs[a])
				tensor.Axpy(gv, vecs[a], gradVecs[bidx])
			}
		}
		d.Bottom.backward(botTape, gradVecs[0])
		sg.Grads[i] = gradVecs[1:]
	}
	n := len(b.Samples)
	d.Bottom.step(d.cfg.LRDense, n)
	d.Top.step(d.cfg.LRDense, n)
	if n == 0 {
		return 0, sg
	}
	return float32(totalLoss / float64(n)), sg
}

// ApplySparseFor applies the sparse gradients for the given tables only
// (a node applying updates to its local shard) and marks the tracker.
// Each sample's update applies in order, so rows referenced by multiple
// samples accumulate all their updates, matching synchronous semantics.
func (d *DLRM) ApplySparseFor(b *data.Batch, sg *SparseGrads, tableSet map[int]bool) {
	for i := range b.Samples {
		s := &b.Samples[i]
		for t, id := range s.Sparse {
			if !tableSet[t] {
				continue
			}
			d.Sparse.Table(t).ApplyGrad(id, sg.Grads[i][t], d.cfg.LRSparse)
			d.Tracker.Mark(t, id)
		}
	}
}

// EmbedDim exposes the embedding dimension for trainer wiring.
func (d *DLRM) EmbedDim() int { return d.cfg.EmbedDim }

// NumTables exposes the table count for trainer wiring.
func (d *DLRM) NumTables() int { return len(d.cfg.Tables) }
