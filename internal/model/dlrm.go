package model

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/tensor"
)

// Config describes a DLRM architecture.
type Config struct {
	DenseDim int
	// EmbedDim is the shared embedding dimension; the bottom MLP's output
	// must match it so the dot interaction is well-defined.
	EmbedDim int
	// BottomHidden and TopHidden are hidden layer widths.
	BottomHidden []int
	TopHidden    []int
	// Tables lists the embedding tables.
	Tables []embedding.TableSpec
	// LRDense and LRSparse are the learning rates for the MLPs (SGD) and
	// embedding rows (row-wise AdaGrad) respectively.
	LRDense  float32
	LRSparse float32
	Seed     int64
}

// DefaultConfig returns a small but complete DLRM matched to
// data.DefaultSpec.
func DefaultConfig() Config {
	return Config{
		DenseDim:     13,
		EmbedDim:     16,
		BottomHidden: []int{32},
		TopHidden:    []int{32},
		Tables: []embedding.TableSpec{
			{Rows: 4096, Dim: 16}, {Rows: 4096, Dim: 16},
			{Rows: 8192, Dim: 16}, {Rows: 16384, Dim: 16},
		},
		LRDense:  0.05,
		LRSparse: 0.02,
		Seed:     1,
	}
}

// DLRM is the full recommendation model: bottom MLP over dense features,
// sharded embedding tables over sparse features, dot interaction, top MLP
// producing the click logit.
type DLRM struct {
	cfg     Config
	Bottom  *MLP
	Top     *MLP
	Sparse  *embedding.ShardedModel
	Tracker *embedding.Tracker

	nInteract int // number of pairwise-dot features
}

// New builds a DLRM. nodes is the number of trainer nodes the embedding
// tables are sharded across.
func New(cfg Config, nodes int) (*DLRM, error) {
	if cfg.DenseDim <= 0 || cfg.EmbedDim <= 0 {
		return nil, fmt.Errorf("model: invalid dims dense=%d embed=%d", cfg.DenseDim, cfg.EmbedDim)
	}
	if len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("model: no embedding tables")
	}
	for i, t := range cfg.Tables {
		if t.Dim != cfg.EmbedDim {
			return nil, fmt.Errorf("model: table %d dim %d != EmbedDim %d", i, t.Dim, cfg.EmbedDim)
		}
	}
	if cfg.LRDense <= 0 || cfg.LRSparse <= 0 {
		return nil, fmt.Errorf("model: learning rates must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	botDims := append([]int{cfg.DenseDim}, cfg.BottomHidden...)
	botDims = append(botDims, cfg.EmbedDim)
	bottom, err := NewMLP(botDims, rng)
	if err != nil {
		return nil, fmt.Errorf("model: bottom MLP: %w", err)
	}

	// Interaction features: pairwise dots among T embedding vectors plus
	// the bottom output — (T+1) choose 2 — concatenated with the bottom
	// output itself, as in the DLRM paper.
	nvec := len(cfg.Tables) + 1
	nInteract := nvec * (nvec - 1) / 2
	topDims := append([]int{cfg.EmbedDim + nInteract}, cfg.TopHidden...)
	topDims = append(topDims, 1)
	top, err := NewMLP(topDims, rng)
	if err != nil {
		return nil, fmt.Errorf("model: top MLP: %w", err)
	}

	sparse, err := embedding.NewSharded(cfg.Tables, nodes, rng)
	if err != nil {
		return nil, fmt.Errorf("model: sparse layer: %w", err)
	}
	return &DLRM{
		cfg:       cfg,
		Bottom:    bottom,
		Top:       top,
		Sparse:    sparse,
		Tracker:   embedding.NewTracker(sparse.Tables),
		nInteract: nInteract,
	}, nil
}

// Config returns the model's configuration.
func (d *DLRM) Config() Config { return d.cfg }

// forwardSample computes the logit for one sample, returning the
// intermediate state needed for the backward pass.
type sampleState struct {
	botTape *tape
	topTape *tape
	vecs    []tensor.Vector // [bottom output, e_0, ..., e_{T-1}]
	logit   float32
}

func (d *DLRM) forwardSample(s *data.Sample) *sampleState {
	st := &sampleState{}
	st.botTape = d.Bottom.forward(s.Dense)
	z0 := st.botTape.out

	st.vecs = make([]tensor.Vector, 0, len(s.Sparse)+1)
	st.vecs = append(st.vecs, z0)
	for t, id := range s.Sparse {
		st.vecs = append(st.vecs, d.Sparse.Table(t).Lookup(id))
	}

	// Interaction: [z0 ; dot(v_i, v_j) for i<j].
	feats := make(tensor.Vector, d.cfg.EmbedDim+d.nInteract)
	copy(feats, z0)
	k := d.cfg.EmbedDim
	for i := 0; i < len(st.vecs); i++ {
		for j := i + 1; j < len(st.vecs); j++ {
			feats[k] = tensor.Dot(st.vecs[i], st.vecs[j])
			k++
		}
	}
	st.topTape = d.Top.forward(feats)
	st.logit = st.topTape.out[0]
	return st
}

// Forward returns the click logit for a sample without recording anything.
func (d *DLRM) Forward(s *data.Sample) float32 {
	return d.forwardSample(s).logit
}

// TrainBatch runs one synchronous training iteration: forward + backward
// over every sample, embedding rows updated immediately with AdaGrad
// (model-parallel semantics) and marked in the tracker, MLP gradients
// accumulated and applied once (data-parallel AllReduce semantics).
// It returns the mean BCE loss over the batch.
func (d *DLRM) TrainBatch(b *data.Batch) float32 {
	var totalLoss float64
	for i := range b.Samples {
		s := &b.Samples[i]
		st := d.forwardSample(s)
		totalLoss += float64(tensor.BCEWithLogits(st.logit, s.Label))
		gLogit := tensor.BCEGrad(st.logit, s.Label)

		// Top MLP backward: input gradient covers [z0 ; dots].
		gradFeats := d.Top.backward(st.topTape, tensor.Vector{gLogit})

		// Interaction backward: d(dot(vi,vj))/dvi = vj.
		gradVecs := make([]tensor.Vector, len(st.vecs))
		for v := range gradVecs {
			gradVecs[v] = make(tensor.Vector, d.cfg.EmbedDim)
		}
		copy(gradVecs[0], gradFeats[:d.cfg.EmbedDim])
		k := d.cfg.EmbedDim
		for vi := 0; vi < len(st.vecs); vi++ {
			for vj := vi + 1; vj < len(st.vecs); vj++ {
				g := gradFeats[k]
				k++
				if g == 0 {
					continue
				}
				tensor.Axpy(g, st.vecs[vj], gradVecs[vi])
				tensor.Axpy(g, st.vecs[vi], gradVecs[vj])
			}
		}

		// Bottom MLP backward from z0's gradient.
		d.Bottom.backward(st.botTape, gradVecs[0])

		// Sparse updates: immediate row-wise AdaGrad + tracker mark.
		for t, id := range s.Sparse {
			d.Sparse.Table(t).ApplyGrad(id, gradVecs[t+1], d.cfg.LRSparse)
			d.Tracker.Mark(t, id)
		}
	}
	n := len(b.Samples)
	d.Bottom.step(d.cfg.LRDense, n)
	d.Top.step(d.cfg.LRDense, n)
	if n == 0 {
		return 0
	}
	return float32(totalLoss / float64(n))
}

// EvalBatch returns the mean BCE loss on a batch without any updates.
func (d *DLRM) EvalBatch(b *data.Batch) float32 {
	if len(b.Samples) == 0 {
		return 0
	}
	var total float64
	for i := range b.Samples {
		s := &b.Samples[i]
		logit := d.Forward(s)
		total += float64(tensor.BCEWithLogits(logit, s.Label))
	}
	return float32(total / float64(len(b.Samples)))
}

// EvalLoss evaluates mean loss over n held-out samples drawn from gen
// starting at a fixed offset, without disturbing gen's position.
func (d *DLRM) EvalLoss(gen *data.Generator, start uint64, n int) float32 {
	if n <= 0 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		s := gen.At(start + uint64(i))
		total += float64(tensor.BCEWithLogits(d.Forward(&s), s.Label))
	}
	return float32(total / float64(n))
}

// DenseState serializes both MLPs (the dense trainer state of §4.1).
func (d *DLRM) DenseState() ([]byte, error) {
	bb, err := d.Bottom.MarshalBinary()
	if err != nil {
		return nil, err
	}
	tb, err := d.Top.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 8+len(bb)+len(tb))
	var hdr [4]byte
	putU32 := func(v uint32) {
		hdr[0] = byte(v)
		hdr[1] = byte(v >> 8)
		hdr[2] = byte(v >> 16)
		hdr[3] = byte(v >> 24)
		out = append(out, hdr[:]...)
	}
	putU32(uint32(len(bb)))
	out = append(out, bb...)
	putU32(uint32(len(tb)))
	out = append(out, tb...)
	return out, nil
}

// RestoreDenseState restores both MLPs from DenseState output.
func (d *DLRM) RestoreDenseState(payload []byte) error {
	readU32 := func(p []byte) uint32 {
		return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
	}
	if len(payload) < 4 {
		return fmt.Errorf("model: short dense state")
	}
	n := int(readU32(payload))
	payload = payload[4:]
	if len(payload) < n {
		return fmt.Errorf("model: truncated bottom MLP")
	}
	if err := d.Bottom.UnmarshalBinary(payload[:n]); err != nil {
		return fmt.Errorf("model: bottom MLP: %w", err)
	}
	payload = payload[n:]
	if len(payload) < 4 {
		return fmt.Errorf("model: missing top MLP header")
	}
	n = int(readU32(payload))
	payload = payload[4:]
	if len(payload) != n {
		return fmt.Errorf("model: top MLP payload %d bytes, want %d", len(payload), n)
	}
	return d.Top.UnmarshalBinary(payload)
}

// SparseBytes returns the checkpointable size of the sparse layer, and
// DenseBytes the dense layer; the paper notes sparse is > 99% of the model.
func (d *DLRM) SparseBytes() int64 { return d.Sparse.TotalBytes() }

// DenseBytes returns the serialized dense state size.
func (d *DLRM) DenseBytes() int64 {
	return int64(4*(d.Bottom.ParamCount()+d.Top.ParamCount())) + 64
}
