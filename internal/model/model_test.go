package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/tensor"
)

func testConfig() Config {
	cfg := DefaultConfig()
	// Shrink for fast tests.
	cfg.Tables = []embedding.TableSpec{
		{Rows: 256, Dim: 16}, {Rows: 256, Dim: 16},
		{Rows: 512, Dim: 16}, {Rows: 512, Dim: 16},
	}
	return cfg
}

func testDataSpec() data.Spec {
	spec := data.DefaultSpec()
	spec.TableRows = []int{256, 256, 512, 512}
	return spec
}

func mustModel(t *testing.T, nodes int) *DLRM {
	t.Helper()
	d, err := New(testConfig(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero dense", func(c *Config) { c.DenseDim = 0 }},
		{"zero embed", func(c *Config) { c.EmbedDim = 0 }},
		{"no tables", func(c *Config) { c.Tables = nil }},
		{"dim mismatch", func(c *Config) { c.Tables = []embedding.TableSpec{{Rows: 10, Dim: 8}} }},
		{"zero lr", func(c *Config) { c.LRDense = 0 }},
	}
	for _, cse := range cases {
		cfg := testConfig()
		cse.mut(&cfg)
		if _, err := New(cfg, 1); err == nil {
			t.Errorf("%s: want error", cse.name)
		}
	}
}

func TestMLPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMLP([]int{5}, rng); err == nil {
		t.Fatal("single dim should error")
	}
	if _, err := NewMLP([]int{5, 0}, rng); err == nil {
		t.Fatal("zero dim should error")
	}
}

func TestMLPForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewMLP([]int{4, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tp := m.forward(make(tensor.Vector, 4))
	if len(tp.out) != 2 {
		t.Fatalf("out dim %d, want 2", len(tp.out))
	}
	if m.InDim() != 4 || m.OutDim() != 2 {
		t.Fatal("dims accessors wrong")
	}
}

func TestMLPGradientCheck(t *testing.T) {
	// Numerical gradient check of the full backward pass via the input
	// gradient: perturb each input coordinate and compare.
	rng := rand.New(rand.NewSource(2))
	m, err := NewMLP([]int{3, 5, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.3, -0.7, 1.1}
	loss := func(x tensor.Vector) float64 {
		tp := m.forward(x)
		return float64(tensor.BCEWithLogits(tp.out[0], 1))
	}
	tp := m.forward(x)
	g := tensor.BCEGrad(tp.out[0], 1)
	gin := m.backward(tp, tensor.Vector{g})
	// Discard accumulated parameter grads so the weights stay fixed.
	for _, l := range m.layers {
		for i := range l.gw.Data {
			l.gw.Data[i] = 0
		}
		for i := range l.gb {
			l.gb[i] = 0
		}
	}
	const h = 1e-3
	for i := range x {
		xp := append(tensor.Vector(nil), x...)
		xm := append(tensor.Vector(nil), x...)
		xp[i] += h
		xm[i] -= h
		num := (loss(xp) - loss(xm)) / (2 * h)
		if math.Abs(num-float64(gin[i])) > 1e-2 {
			t.Fatalf("input grad %d: numeric %v vs analytic %v", i, num, gin[i])
		}
	}
}

func TestMLPStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMLP([]int{2, 8, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Learn XOR-ish target on 4 points; loss should drop markedly.
	xs := []tensor.Vector{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float32{0, 1, 1, 0}
	lossAt := func() float64 {
		var s float64
		for i, x := range xs {
			tp := m.forward(x)
			s += float64(tensor.BCEWithLogits(tp.out[0], ys[i]))
		}
		return s / 4
	}
	before := lossAt()
	for epoch := 0; epoch < 2000; epoch++ {
		for i, x := range xs {
			tp := m.forward(x)
			m.backward(tp, tensor.Vector{tensor.BCEGrad(tp.out[0], ys[i])})
		}
		m.step(0.5, 4)
	}
	after := lossAt()
	if after > before*0.5 {
		t.Fatalf("loss did not drop training XOR: %v -> %v", before, after)
	}
}

func TestMLPMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := NewMLP([]int{4, 6, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMLP([]int{4, 6, 2}, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{1, 2, 3, 4}
	a := m.forward(x).out
	b := m2.forward(x).out
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored MLP differs: %v vs %v", a, b)
		}
	}
}

func TestMLPUnmarshalErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := NewMLP([]int{4, 2}, rng)
	if err := m.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil payload should error")
	}
	other, _ := NewMLP([]int{3, 2}, rng)
	blob, _ := other.MarshalBinary()
	if err := m.UnmarshalBinary(blob); err == nil {
		t.Fatal("architecture mismatch should error")
	}
	good, _ := m.MarshalBinary()
	if err := m.UnmarshalBinary(good[:len(good)-2]); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func TestMLPCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, _ := NewMLP([]int{2, 2}, rng)
	c := m.Clone()
	m.layers[0].w.Data[0] += 1
	if c.layers[0].w.Data[0] == m.layers[0].w.Data[0] {
		t.Fatal("clone aliases original")
	}
}

func TestDLRMTrainingReducesLoss(t *testing.T) {
	d := mustModel(t, 2)
	gen, err := data.NewGenerator(testDataSpec())
	if err != nil {
		t.Fatal(err)
	}
	const evalStart = 1 << 30
	before := d.EvalLoss(gen, evalStart, 200)
	for i := 0; i < 60; i++ {
		d.TrainBatch(gen.NextBatch(64))
	}
	after := d.EvalLoss(gen, evalStart, 200)
	if after >= before {
		t.Fatalf("training did not reduce held-out loss: %v -> %v", before, after)
	}
	t.Logf("loss %v -> %v", before, after)
}

func TestDLRMTrainBatchReturnsFiniteLoss(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	loss := d.TrainBatch(gen.NextBatch(32))
	if math.IsNaN(float64(loss)) || math.IsInf(float64(loss), 0) {
		t.Fatalf("loss = %v", loss)
	}
	if loss <= 0 {
		t.Fatalf("loss = %v, want > 0", loss)
	}
}

func TestDLRMTracksModifiedRows(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	if d.Tracker.TotalModified() != 0 {
		t.Fatal("tracker should start empty")
	}
	b := gen.NextBatch(32)
	d.TrainBatch(b)
	mod := d.Tracker.TotalModified()
	if mod == 0 {
		t.Fatal("no rows marked after training")
	}
	// Upper bound: at most batch*tables distinct rows.
	if mod > 32*len(testConfig().Tables) {
		t.Fatalf("marked %d rows, more than touched", mod)
	}
	// Every accessed row must be marked.
	snap := d.Tracker.Snapshot(false)
	for i := range b.Samples {
		for ti, id := range b.Samples[i].Sparse {
			if !snap[ti].Test(id) {
				t.Fatalf("row (%d,%d) accessed but not marked", ti, id)
			}
		}
	}
}

func TestDLRMSparsityOfUpdates(t *testing.T) {
	// Only a tiny fraction of the model is touched per batch — the core
	// motivation for incremental checkpointing (§3.3).
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	d.TrainBatch(gen.NextBatch(16))
	frac := d.Tracker.ModifiedFraction()
	if frac <= 0 || frac > 0.10 {
		t.Fatalf("modified fraction per batch = %v, want small and positive", frac)
	}
}

func TestDLRMEvalDoesNotModify(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	b := gen.NextBatch(16)
	d.EvalBatch(b)
	if d.Tracker.TotalModified() != 0 {
		t.Fatal("eval must not mark rows")
	}
}

func TestDLRMDenseStateRoundTrip(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	d.TrainBatch(gen.NextBatch(32))
	blob, err := d.DenseState()
	if err != nil {
		t.Fatal(err)
	}
	d2 := mustModel(t, 1)
	if err := d2.RestoreDenseState(blob); err != nil {
		t.Fatal(err)
	}
	s := gen.At(9999)
	// Same dense params; embeddings differ (d trained), so compare the
	// bottom MLP outputs directly.
	a := d.Bottom.forward(s.Dense).out
	b2 := d2.Bottom.forward(s.Dense).out
	for i := range a {
		if a[i] != b2[i] {
			t.Fatal("restored dense state differs")
		}
	}
}

func TestDLRMRestoreDenseStateErrors(t *testing.T) {
	d := mustModel(t, 1)
	if err := d.RestoreDenseState(nil); err == nil {
		t.Fatal("nil payload should error")
	}
	if err := d.RestoreDenseState([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("garbage payload should error")
	}
}

func TestDLRMSparseDominates(t *testing.T) {
	// Paper: embedding tables are > 99% of model size. With the default
	// config the ratio is high; assert sparse strictly dominates.
	cfg := DefaultConfig()
	d, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.SparseBytes() < 20*d.DenseBytes() {
		t.Fatalf("sparse %d vs dense %d: sparse should dominate", d.SparseBytes(), d.DenseBytes())
	}
}

func TestDLRMDeterministicInit(t *testing.T) {
	a := mustModel(t, 1)
	b := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	s := gen.At(5)
	if a.Forward(&s) != b.Forward(&s) {
		t.Fatal("same seed should give identical models")
	}
}

func BenchmarkTrainBatch64(b *testing.B) {
	cfg := DefaultConfig()
	d, err := New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := data.NewGenerator(data.DefaultSpec())
	if err != nil {
		b.Fatal(err)
	}
	batch := gen.NextBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TrainBatch(batch)
	}
}

func TestEvalAUCUntrainedNearHalf(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	auc := d.EvalAUC(gen, 1<<30, 400)
	if auc < 0.35 || auc > 0.65 {
		t.Fatalf("untrained AUC = %v, want near 0.5", auc)
	}
}

func TestEvalAUCImprovesWithTraining(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	before := d.EvalAUC(gen, 1<<30, 400)
	for i := 0; i < 80; i++ {
		d.TrainBatch(gen.NextBatch(64))
	}
	after := d.EvalAUC(gen, 1<<30, 400)
	if after <= before {
		t.Fatalf("AUC did not improve: %v -> %v", before, after)
	}
	if after < 0.55 {
		t.Fatalf("trained AUC = %v, want > 0.55", after)
	}
	t.Logf("AUC %v -> %v", before, after)
}

func TestEvalAUCDegenerate(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	if auc := d.EvalAUC(gen, 0, 0); auc != 0.5 {
		t.Fatalf("n=0 AUC = %v, want 0.5", auc)
	}
	// Single sample: one class absent.
	if auc := d.EvalAUC(gen, 0, 1); auc != 0.5 {
		t.Fatalf("single-sample AUC = %v, want 0.5", auc)
	}
}
