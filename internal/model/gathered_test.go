package model

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/tensor"
)

func TestGatherSparseCopies(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	b := gen.NextBatch(8)
	g := d.GatherSparse(b)
	if len(g.Vecs) != 8 {
		t.Fatalf("gathered %d samples", len(g.Vecs))
	}
	// Gathered vectors are copies: mutating them must not touch tables.
	s0 := &b.Samples[0]
	orig := d.Sparse.Table(0).Weights.At(s0.Sparse[0], 0)
	g.Vecs[0][0][0] = 999
	if d.Sparse.Table(0).Weights.At(s0.Sparse[0], 0) != orig {
		t.Fatal("gathered vector aliases the table")
	}
}

func TestGatherSparseForPartial(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	b := gen.NextBatch(4)
	g := &Gathered{}
	d.GatherSparseFor(b, g, map[int]bool{0: true, 2: true})
	for i := range g.Vecs {
		if g.Vecs[i][0] == nil || g.Vecs[i][2] == nil {
			t.Fatal("requested tables not gathered")
		}
		if g.Vecs[i][1] != nil || g.Vecs[i][3] != nil {
			t.Fatal("unrequested tables gathered")
		}
	}
	// Completing the gather fills the gaps.
	d.GatherSparseFor(b, g, map[int]bool{1: true, 3: true})
	for i := range g.Vecs {
		for tb := range g.Vecs[i] {
			if g.Vecs[i][tb] == nil {
				t.Fatalf("sample %d table %d still missing", i, tb)
			}
		}
	}
}

func TestTrainGatheredPanicsOnIncompleteGather(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	b := gen.NextBatch(2)
	g := &Gathered{}
	d.GatherSparseFor(b, g, map[int]bool{0: true}) // tables 1..3 missing
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete gather should panic")
		}
	}()
	d.TrainGathered(b, g)
}

func TestTrainGatheredPanicsOnSizeMismatch(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	b := gen.NextBatch(2)
	g := d.GatherSparse(gen.NextBatch(3))
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch should panic")
		}
	}()
	d.TrainGathered(b, g)
}

func TestGatheredPipelineEquivalentToItself(t *testing.T) {
	// Two identical models run the gathered pipeline on the same batch;
	// results must match exactly (determinism of the split-phase path).
	run := func() *DLRM {
		d := mustModel(t, 1)
		gen, _ := data.NewGenerator(testDataSpec())
		all := map[int]bool{0: true, 1: true, 2: true, 3: true}
		for i := 0; i < 5; i++ {
			b := gen.NextBatch(16)
			g := d.GatherSparse(b)
			_, sg := d.TrainGathered(b, g)
			d.ApplySparseFor(b, sg, all)
		}
		return d
	}
	a, b := run(), run()
	gen, _ := data.NewGenerator(testDataSpec())
	for i := uint64(0); i < 16; i++ {
		s := gen.At(1<<36 + i)
		if a.Forward(&s) != b.Forward(&s) {
			t.Fatal("gathered pipeline not deterministic")
		}
	}
}

func TestGatheredLearns(t *testing.T) {
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	all := map[int]bool{0: true, 1: true, 2: true, 3: true}
	before := d.EvalLoss(gen, 1<<30, 200)
	for i := 0; i < 50; i++ {
		b := gen.NextBatch(64)
		g := d.GatherSparse(b)
		_, sg := d.TrainGathered(b, g)
		d.ApplySparseFor(b, sg, all)
	}
	after := d.EvalLoss(gen, 1<<30, 200)
	if after >= before {
		t.Fatalf("gathered training did not learn: %v -> %v", before, after)
	}
}

func TestApplySparseAccumulatesMultiSampleRows(t *testing.T) {
	// Two samples referencing the same row must both contribute updates.
	d := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	b := gen.NextBatch(2)
	// Force both samples onto the same row of table 0.
	b.Samples[1].Sparse[0] = b.Samples[0].Sparse[0]
	row := b.Samples[0].Sparse[0]
	g := d.GatherSparse(b)
	_, sg := d.TrainGathered(b, g)
	// Make both gradients nonzero and known.
	sg.Grads[0][0] = make(tensor.Vector, d.EmbedDim())
	sg.Grads[1][0] = make(tensor.Vector, d.EmbedDim())
	sg.Grads[0][0][0] = 1
	sg.Grads[1][0][0] = 1
	before := d.Sparse.Table(0).Weights.At(row, 0)
	d.ApplySparseFor(b, sg, map[int]bool{0: true})
	after := d.Sparse.Table(0).Weights.At(row, 0)
	// Two AdaGrad steps applied: strictly more movement than one step
	// (which we can bound by applying one step on a fresh model).
	if !(after < before) {
		t.Fatalf("row did not move against positive grads: %v -> %v", before, after)
	}
	if d.Tracker.ModifiedRows(0) == 0 {
		t.Fatal("tracker not marked by ApplySparseFor")
	}
}

func TestAccessors(t *testing.T) {
	d := mustModel(t, 1)
	if d.EmbedDim() != 16 || d.NumTables() != 4 {
		t.Fatalf("accessors: dim=%d tables=%d", d.EmbedDim(), d.NumTables())
	}
	if d.Config().EmbedDim != 16 {
		t.Fatal("Config accessor wrong")
	}
}

func TestGatheredForwardMatchesSequentialBeforeUpdates(t *testing.T) {
	// With no prior updates, the first sample's logit computed through
	// the gathered path equals the live-table path bit for bit.
	d1 := mustModel(t, 1)
	d2 := mustModel(t, 1)
	gen, _ := data.NewGenerator(testDataSpec())
	b := gen.NextBatch(1)
	g := d1.GatherSparse(b)
	loss1, _ := d1.TrainGathered(b, g)
	s := &b.Samples[0]
	logit2 := d2.Forward(s)
	loss2 := tensor.BCEWithLogits(logit2, s.Label)
	if math.Abs(float64(loss1-loss2)) > 1e-6 {
		t.Fatalf("single-sample losses differ: %v vs %v", loss1, loss2)
	}
}
