package model

import (
	"sort"

	"repro/internal/data"
)

// EvalAUC computes the area under the ROC curve over n held-out samples
// drawn from gen starting at a fixed offset — the ranking-quality metric
// production recommendation systems report alongside loss. Ties receive
// the standard half-credit. It returns 0.5 when either class is absent.
func (d *DLRM) EvalAUC(gen *data.Generator, start uint64, n int) float64 {
	if n <= 0 {
		return 0.5
	}
	type scored struct {
		logit float32
		pos   bool
	}
	items := make([]scored, 0, n)
	pos, neg := 0, 0
	for i := 0; i < n; i++ {
		s := gen.At(start + uint64(i))
		isPos := s.Label == 1
		if isPos {
			pos++
		} else {
			neg++
		}
		items = append(items, scored{logit: d.Forward(&s), pos: isPos})
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	// Rank-sum (Mann-Whitney U) formulation with midranks for ties.
	sort.Slice(items, func(a, b int) bool { return items[a].logit < items[b].logit })
	var rankSumPos float64
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].logit == items[i].logit {
			j++
		}
		// Ranks i+1..j share the midrank.
		midrank := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if items[k].pos {
				rankSumPos += midrank
			}
		}
		i = j
	}
	u := rankSumPos - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}
